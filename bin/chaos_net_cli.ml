(* End-to-end crash-restart + network-fault torture (DESIGN.md §17).

   Each seed runs the REAL server binary as a child process on a
   SIGKILL-survivable NVM image ([--image-dir]), puts the frame-level
   fault injector ([Chaos_net.Netproxy]) between it and a set of
   retrying client sessions ([Wire.Session]), then tortures it:

     - seeded net.* fault schedules (drop / delay / dup / trunc / sever)
       applied to the request and reply frame streams, and
     - SIGKILL crash-restart cycles landing mid-load, the restart
       recovering from the same image directory.

   The exactly-once oracle at the end of each seed connects DIRECTLY to
   the final server incarnation and checks, for every key, that the
   store holds exactly the last acked mutation — no acked op lost
   across any crash, no retried op applied twice (values are distinct
   per op, so a duplicated replay would surface as a stale overwrite) —
   and that the server drains cleanly on SIGTERM afterwards.

   Seed 1 is a targeted dedup scenario: the proxy drops exactly one
   reply frame and SIGKILLs the server at that moment, so the op is
   applied + durably recorded but never acked; the session's resend
   after the restart MUST be answered from the recovered dedup table —
   the seed asserts [server.dedup_hits >= 1].

   Run with: dune exec bin/chaos_net.exe -- [--seeds 8] [--json FILE] *)

module S = Wire.Session

let usage = "usage: chaos_net [--seeds N] [--json FILE] [--verbose]"

let verbose = ref false

let logf fmt =
  Printf.ksprintf (fun s -> if !verbose then Printf.eprintf "%s\n%!" s) fmt

(* ---------------------------------------------------- server process *)

let server_exe =
  Filename.concat (Filename.dirname Sys.executable_name) "incll_server.exe"

type server = { mutable pid : int; sock : string; dir : string }

let spawn_server sv =
  let log =
    Unix.openfile
      (Filename.concat sv.dir "server.log")
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
      0o644
  in
  let args =
    [|
      server_exe; "--listen"; "unix:" ^ sv.sock; "--shards"; "2";
      "--image-dir"; Filename.concat sv.dir "img";
      (* Long epoch: no checkpoint truncates the log mid-seed, so every
         acked op's session record survives in the live prefix. *)
      "--epoch-ms"; "5000"; "--size-mb"; "16"; "--log-kb"; "1024";
      "--queue-capacity"; "4096";
    |]
  in
  sv.pid <- Unix.create_process server_exe args Unix.stdin log log;
  Unix.close log

let rec waitpid_eintr pid =
  try ignore (Unix.waitpid [] pid : int * Unix.process_status)
  with Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_eintr pid

(* Ready = the socket exists and a probe connection succeeds. *)
let wait_ready sv =
  let deadline = Unix.gettimeofday () +. 15.0 in
  let rec poll () =
    if Unix.gettimeofday () > deadline then
      failwith "chaos_net: server did not come up";
    match Wire.Client.connect (Wire.Client.Unix_sock sv.sock) with
    | c -> Wire.Client.close c
    | exception (Unix.Unix_error _ | Failure _) ->
        Unix.sleepf 0.02;
        poll ()
  in
  poll ()

let sigkill_restart sv =
  Unix.kill sv.pid Sys.sigkill;
  waitpid_eintr sv.pid;
  (* Stale socket file from the killed process would fool the readiness
     probe only if connect succeeded — it cannot; but remove it so the
     probe fails fast. *)
  (try Sys.remove sv.sock with Sys_error _ -> ());
  spawn_server sv;
  wait_ready sv

(* Graceful-drain check: SIGTERM must exit 0 within the deadline. *)
let sigterm_drain sv =
  Unix.kill sv.pid Sys.sigterm;
  let deadline = Unix.gettimeofday () +. 15.0 in
  let rec wait () =
    match Unix.waitpid [ Unix.WNOHANG ] sv.pid with
    | 0, _ ->
        if Unix.gettimeofday () > deadline then begin
          Unix.kill sv.pid Sys.sigkill;
          waitpid_eintr sv.pid;
          Error "server did not drain on SIGTERM"
        end
        else begin
          Unix.sleepf 0.05;
          wait ()
        end
    | _, Unix.WEXITED 0 -> Ok ()
    | _, st ->
        Error
          (match st with
          | Unix.WEXITED n -> Printf.sprintf "server exited %d" n
          | Unix.WSIGNALED n -> Printf.sprintf "server killed by signal %d" n
          | Unix.WSTOPPED n -> Printf.sprintf "server stopped by signal %d" n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
  in
  wait ()

(* ------------------------------------------------------- one session *)

type session_result = {
  acked : (string * string option) list;  (* expected final state *)
  ops : int;
  retries : int;
  reconnects : int;
  backoff_ns : float;
  error : string option;
}

let session_cfg seed =
  {
    S.op_deadline = 60.0;
    attempt_timeout = 0.5;
    retry_budget = 500;
    backoff_base = 0.01;
    backoff_max = 0.1;
    seed;
  }

(* One client session: a seeded stream of puts / deletes / small txns
   over its own 8-key keyspace, values distinct per op. Records what was
   acked; any terminal session error fails the seed. *)
let run_session ~addr ~sid_ix ~seed ~nops () =
  let rng = Util.Rng.create ~seed:(seed * 1000 + sid_ix) in
  let key j = Printf.sprintf "s%d-%d" sid_ix (j mod 8) in
  let expected : (string, string option) Hashtbl.t = Hashtbl.create 16 in
  let ops = ref 0 in
  match S.connect ~config:(session_cfg (seed + sid_ix)) addr with
  | exception e ->
      {
        acked = []; ops = 0; retries = 0; reconnects = 0; backoff_ns = 0.0;
        error = Some (Printexc.to_string e);
      }
  | s ->
      let finish error =
        let r =
          {
            acked = Hashtbl.fold (fun k v l -> (k, v) :: l) expected [];
            ops = !ops;
            retries = S.retries s;
            reconnects = S.reconnects s;
            backoff_ns = S.backoff_ns s;
            error;
          }
        in
        S.close s;
        r
      in
      (try
         for j = 1 to nops do
           let k = key j in
           let v = Printf.sprintf "s%d.%d" sid_ix j in
           (match Util.Rng.int rng 6 with
           | 0 ->
               if S.delete s k then () else ();
               Hashtbl.replace expected k None
           | 1 ->
               (* A two-key durable transaction through the 2PC path. *)
               let k2 = key (j + 1) in
               S.txn_begin s;
               S.txn_put s k v;
               S.txn_put s k2 (v ^ "b");
               S.txn_commit s;
               Hashtbl.replace expected k (Some v);
               Hashtbl.replace expected k2 (Some (v ^ "b"))
           | _ ->
               S.put s k v;
               Hashtbl.replace expected k (Some v));
           incr ops
         done;
         finish None
       with e -> finish (Some (Printexc.to_string e)))

(* ---------------------------------------------------------- a seed *)

type seed_report = {
  seed : int;
  ok : bool;
  failures : string list;
  total_ops : int;
  total_retries : int;
  total_reconnects : int;
  total_backoff_ms : float;
  crashes : int;
  faults : int;
  dedup_hits : int;
}

(* Pull "server.dedup_hits" out of the STATS JSON counter dump. *)
let dedup_hits_of_stats json =
  let needle = "\"server.dedup_hits\"" in
  let nlen = String.length needle in
  let len = String.length json in
  let rec find i =
    if i + nlen > len then 0
    else if String.sub json i nlen = needle then begin
      let j = ref (i + nlen) in
      while !j < len && (json.[!j] = ':' || json.[!j] = ' ') do
        incr j
      done;
      let k = ref !j in
      while !k < len && json.[!k] >= '0' && json.[!k] <= '9' do
        incr k
      done;
      if !k > !j then int_of_string (String.sub json !j (!k - !j)) else 0
    end
    else find (i + 1)
  in
  find 0

let rm_rf dir =
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)))

(* A seeded schedule of faults for one direction: [n] points at strictly
   increasing frame ordinals. Severing faults are kept rare (each costs
   a reconnect round trip). *)
let gen_sched rng n =
  let hit = ref 1 in
  List.init n (fun _ ->
      hit := !hit + 2 + Util.Rng.int rng 10;
      let site =
        match Util.Rng.int rng 8 with
        | 0 | 1 -> Chaos.Site.Net_drop
        | 2 | 3 -> Chaos.Site.Net_delay
        | 4 | 5 -> Chaos.Site.Net_dup
        | 6 -> Chaos.Site.Net_sever
        | _ -> Chaos.Site.Net_trunc
      in
      { Chaos.Plan.site; hit = !hit })

let run_seed ~seed ~sessions ~nops ~ncrashes =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "incll_chaos_net_%d_%d" (Unix.getpid ()) seed)
  in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  let sv = { pid = -1; sock = Filename.concat dir "srv.sock"; dir } in
  spawn_server sv;
  wait_ready sv;
  let rng = Util.Rng.create ~seed in
  let targeted = seed = 1 in
  let kill_now = Atomic.make false in
  let sched_up = if targeted then [] else gen_sched rng 4 in
  let sched_down =
    if targeted then
      (* Drop exactly one reply frame: frame 1 is the HELLO reply, so
         hit 4 is the reply to the session's 3rd op — applied, durably
         recorded, never acked. [on_fault] SIGKILLs at that moment. *)
      [ { Chaos.Plan.site = Chaos.Site.Net_drop; hit = 4 } ]
    else gen_sched rng 4
  in
  let proxy =
    Chaos_net.Netproxy.start ~sched_up ~sched_down
      ~on_fault:(fun p ->
        logf "seed %d: injected %s" seed (Chaos.Plan.point_to_string p);
        if targeted then Atomic.set kill_now true)
      ~listen:(Wire.Client.Unix_sock (Filename.concat dir "proxy.sock"))
      ~upstream:(Wire.Client.Unix_sock sv.sock) ()
  in
  let paddr = Chaos_net.Netproxy.addr proxy in
  let done_flag = Atomic.make false in
  let workers =
    List.init sessions (fun i ->
        Domain.spawn (run_session ~addr:paddr ~sid_ix:i ~seed ~nops))
  in
  (* Crash controller, on this domain: seeded SIGKILL cycles mid-load
     (or, for the targeted seed, the single kill armed by the dropped
     reply), each restart recovering from the same image directory. *)
  let crashes = ref 0 in
  let watcher =
    Domain.spawn (fun () ->
        if targeted then begin
          while (not (Atomic.get done_flag)) && not (Atomic.get kill_now) do
            Unix.sleepf 0.005
          done;
          if Atomic.get kill_now then begin
            logf "seed %d: SIGKILL at dropped reply" seed;
            sigkill_restart sv;
            incr crashes
          end
        end
        else
          for _ = 1 to ncrashes do
            if not (Atomic.get done_flag) then begin
              Unix.sleepf (0.2 +. (Util.Rng.float rng *. 0.3));
              if not (Atomic.get done_flag) then begin
                logf "seed %d: SIGKILL mid-load" seed;
                sigkill_restart sv;
                incr crashes
              end
            end
          done)
  in
  let results = List.map Domain.join workers in
  Atomic.set done_flag true;
  Domain.join watcher;
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  List.iteri
    (fun i r ->
      match r.error with
      | Some e -> fail "session %d: %s" i e
      | None -> ())
    results;
  (* The exactly-once oracle: direct connection, no proxy in the way. *)
  let dedup_hits = ref 0 in
  (match Wire.Client.connect (Wire.Client.Unix_sock sv.sock) with
  | exception e -> fail "final connect: %s" (Printexc.to_string e)
  | c ->
      List.iter
        (fun r ->
          List.iter
            (fun (k, expect) ->
              let got =
                match
                  Wire.Client.call ~deadline:(Unix.gettimeofday () +. 10.0) c
                    (Wire.Proto.Get k)
                with
                | { Wire.Proto.status = Wire.Proto.Ok;
                    payload = Wire.Proto.Value v; _ } ->
                    Some v
                | { Wire.Proto.status = Wire.Proto.Not_found; _ } -> None
                | r -> fail "get %s: unexpected reply" k;
                       ignore r;
                       None
              in
              if got <> expect then
                fail "key %s: acked %s but store has %s" k
                  (match expect with Some v -> v | None -> "<absent>")
                  (match got with Some v -> v | None -> "<absent>"))
            r.acked)
        results;
      (match
         Wire.Client.call ~deadline:(Unix.gettimeofday () +. 10.0) c
           (Wire.Proto.Stats Wire.Proto.Stats_json)
       with
      | { Wire.Proto.status = Wire.Proto.Ok;
          payload = Wire.Proto.Text json; _ } ->
          dedup_hits := dedup_hits_of_stats json
      | _ -> fail "STATS failed on final server")
      [@warning "-8"];
      Wire.Client.close c);
  if targeted && !crashes = 0 then
    fail "targeted seed: reply-drop fault never fired";
  if targeted && !dedup_hits < 1 then
    fail "targeted seed: expected a dedup hit after crash-restart recovery";
  (match sigterm_drain sv with Ok () -> () | Error e -> fail "%s" e);
  let faults = Chaos_net.Netproxy.injected_total proxy in
  Chaos_net.Netproxy.stop proxy;
  let ok = !failures = [] in
  if ok then rm_rf dir
  else Printf.eprintf "seed %d artifacts kept in %s\n%!" seed dir;
  {
    seed;
    ok;
    failures = List.rev !failures;
    total_ops = List.fold_left (fun a r -> a + r.ops) 0 results;
    total_retries = List.fold_left (fun a r -> a + r.retries) 0 results;
    total_reconnects = List.fold_left (fun a r -> a + r.reconnects) 0 results;
    total_backoff_ms =
      List.fold_left (fun a r -> a +. r.backoff_ns) 0.0 results /. 1e6;
    crashes = !crashes;
    faults;
    dedup_hits = !dedup_hits;
  }

(* ------------------------------------------------------------- main *)

let report_json reports =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"seeds\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b
        "{\"seed\":%d,\"ok\":%b,\"ops\":%d,\"retries\":%d,\"reconnects\":%d,\
         \"backoff_ms\":%.3f,\"crashes\":%d,\"faults\":%d,\"dedup_hits\":%d,\
         \"failures\":[%s]}"
        r.seed r.ok r.total_ops r.total_retries r.total_reconnects
        r.total_backoff_ms r.crashes r.faults r.dedup_hits
        (String.concat ","
           (List.map (fun f -> Printf.sprintf "%S" f) r.failures)))
    reports;
  Printf.bprintf b "],\"ok\":%b}" (List.for_all (fun r -> r.ok) reports);
  Buffer.contents b

let () =
  let seeds = ref 8 in
  let json_out = ref None in
  let rec parse = function
    | [] -> ()
    | "--seeds" :: v :: rest ->
        seeds := int_of_string v;
        parse rest
    | "--json" :: v :: rest ->
        json_out := Some v;
        parse rest
    | "--verbose" :: rest ->
        verbose := true;
        parse rest
    | x :: _ ->
        prerr_endline ("unknown argument " ^ x);
        prerr_endline usage;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  (* Sessions write into sockets the fault schedule severs under them;
     that must surface as EPIPE (a retryable error), not process death. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  if not (Sys.file_exists server_exe) then begin
    Printf.eprintf "chaos_net: %s not built\n" server_exe;
    exit 2
  end;
  let reports =
    List.init !seeds (fun i ->
        let seed = i + 1 in
        let r = run_seed ~seed ~sessions:3 ~nops:24 ~ncrashes:2 in
        Printf.printf
          "seed %2d: %s  ops=%d retries=%d reconnects=%d backoff=%.0fms \
           crashes=%d faults=%d dedup_hits=%d\n%!"
          r.seed
          (if r.ok then "OK  " else "FAIL")
          r.total_ops r.total_retries r.total_reconnects r.total_backoff_ms
          r.crashes r.faults r.dedup_hits;
        List.iter (fun f -> Printf.printf "         %s\n%!" f) r.failures;
        r)
  in
  (match !json_out with
  | Some path ->
      let oc = open_out path in
      output_string oc (report_json reports);
      output_string oc "\n";
      close_out oc
  | None -> ());
  let bad = List.filter (fun r -> not r.ok) reports in
  let hits = List.fold_left (fun a r -> a + r.dedup_hits) 0 reports in
  Printf.printf "chaos_net: %d/%d seeds passed, %d dedup hits total\n%!"
    (List.length reports - List.length bad)
    (List.length reports) hits;
  if bad <> [] then exit 1
