(* The serving daemon: a durable sharded store behind the wire protocol.

   Run with: dune exec bin/incll_server.exe -- --listen unix:/tmp/incll.sock
     [--variant INCLL --shards 2 --policy latency --epoch-ms 16]

   Listens on a Unix-domain or TCP socket ("unix:/path" / "tcp:host:port";
   TCP port 0 binds an ephemeral port and the banner line reports the real
   one). SIGTERM/SIGINT drain gracefully: stop accepting, finish every
   in-flight request, flush every reply, then exit. *)

module Sys_ = Incll.System

let usage =
  {|usage: incll_server --listen ADDR [options]
  --listen ADDR         unix:/path/to.sock or tcp:host:port (required)
  --variant V           MT | MT+ | LOGGING | INCLL       (default INCLL)
  --shards N            shard/domain count                (default 2)
  --policy P            throughput | latency | rto        (default throughput)
  --epoch-ms MS         checkpoint cadence                (default 16)
  --queue-capacity N    per-shard request queue bound     (default 1024)
  --batch N             max requests per shard dequeue    (default 64)
  --image-dir DIR       persist each shard's NVM image to DIR/shard<i>.img;
                        restarting over an existing DIR recovers the store
  --size-mb MB          per-shard region size             (default 64)
  --log-kb KB           per-shard external-log size       (default 4096)|}

let config_for policy epoch_ms ~size_mb ~log_kb =
  {
    Sys_.default_config with
    Sys_.nvm =
      Nvm.Config.with_policy
        {
          Nvm.Config.default with
          Nvm.Config.size_bytes = size_mb * 1024 * 1024;
          extlog_bytes = log_kb * 1024;
        }
        policy;
    epoch_len_ns = epoch_ms *. 1e6;
  }

let image_path dir i = Filename.concat dir (Printf.sprintf "shard%d.img" i)

(* Attach-or-create over an image directory: when every shard image is
   present, reload the mirrors and recover each shard over its region
   (in-doubt 2PC records probe the coordinator shard's watermark across
   the freshly loaded regions, mirroring [Store.Sharded.recover]);
   otherwise start fresh and arm a mirror per shard so this process's
   state survives even a SIGKILL. *)
let store_for ~image_dir ~config ~variant ~shards =
  match image_dir with
  | None -> (Store.Sharded.create ~config variant ~shards, false)
  | Some dir ->
      if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
      let regions =
        List.init shards (fun i ->
            Nvm.Region.load_mirror config.Sys_.nvm ~path:(image_path dir i))
      in
      if List.for_all Option.is_some regions then begin
        let regions = Array.of_list (List.map Option.get regions) in
        let txn_probe ~coordinator ~txn_id =
          coordinator >= 0
          && coordinator < Array.length regions
          && txn_id <= Incll.Txn.watermark regions.(coordinator)
        in
        let systems =
          Array.to_list
            (Array.map (Sys_.attach ~txn_probe ~config variant) regions)
        in
        (Store.Sharded.of_systems systems, true)
      end
      else begin
        let store = Store.Sharded.create ~config variant ~shards in
        for i = 0 to shards - 1 do
          Nvm.Region.attach_mirror
            (Sys_.region (Store.Sharded.shard store i))
            ~path:(image_path dir i)
        done;
        (store, false)
      end

let () =
  let listen = ref None in
  let variant = ref Sys_.Incll in
  let shards = ref 2 in
  let policy = ref Nvm.Config.Throughput in
  let epoch_ms = ref 16.0 in
  let queue_capacity = ref 1024 in
  let batch = ref 64 in
  let image_dir = ref None in
  let size_mb = ref 64 in
  let log_kb = ref 4096 in
  let bad msg =
    prerr_endline msg;
    prerr_endline usage;
    exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--listen" :: a :: rest ->
        (match Wire.Client.addr_of_string a with
        | addr -> listen := Some addr
        | exception Invalid_argument m -> bad m);
        parse rest
    | "--variant" :: v :: rest ->
        variant := Sys_.variant_of_string v;
        parse rest
    | "--shards" :: v :: rest ->
        shards := int_of_string v;
        parse rest
    | "--policy" :: v :: rest ->
        (match Nvm.Config.policy_of_string v with
        | p -> policy := p
        | exception Invalid_argument _ ->
            bad ("unknown policy " ^ v ^ " (throughput|latency|rto)"));
        parse rest
    | "--epoch-ms" :: v :: rest ->
        epoch_ms := float_of_string v;
        parse rest
    | "--queue-capacity" :: v :: rest ->
        queue_capacity := int_of_string v;
        parse rest
    | "--batch" :: v :: rest ->
        batch := int_of_string v;
        parse rest
    | "--image-dir" :: v :: rest ->
        image_dir := Some v;
        parse rest
    | "--size-mb" :: v :: rest ->
        size_mb := int_of_string v;
        parse rest
    | "--log-kb" :: v :: rest ->
        log_kb := int_of_string v;
        parse rest
    | x :: _ -> bad ("unknown argument " ^ x)
  in
  parse (List.tl (Array.to_list Sys.argv));
  let listen =
    match !listen with
    | Some a -> a
    | None ->
        prerr_endline "--listen is required";
        prerr_endline usage;
        exit 2
  in
  if !shards < 1 then bad "--shards must be >= 1";
  let config = config_for !policy !epoch_ms ~size_mb:!size_mb ~log_kb:!log_kb in
  let store, recovered =
    store_for ~image_dir:!image_dir ~config ~variant:!variant ~shards:!shards
  in
  let srv =
    Server.Engine.start ~queue_capacity:!queue_capacity ~batch:!batch ~store
      ~variant:!variant ~shards:!shards listen
  in
  Printf.printf
    "incll_server listening on %s — %s, %d shard(s), %s policy%s\n%!"
    (Wire.Client.string_of_addr (Server.Engine.addr srv))
    (Sys_.variant_name !variant)
    !shards
    (Nvm.Config.policy_name !policy)
    (if recovered then " (recovered from image)" else "");
  let stop_requested = Atomic.make false in
  let on_signal _ = Atomic.set stop_requested true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  while not (Atomic.get stop_requested) do
    try Unix.sleepf 0.05 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  prerr_endline "incll_server: draining...";
  Server.Engine.stop srv;
  prerr_endline "incll_server: drained, bye"
