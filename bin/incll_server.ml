(* The serving daemon: a durable sharded store behind the wire protocol.

   Run with: dune exec bin/incll_server.exe -- --listen unix:/tmp/incll.sock
     [--variant INCLL --shards 2 --policy latency --epoch-ms 16]

   Listens on a Unix-domain or TCP socket ("unix:/path" / "tcp:host:port";
   TCP port 0 binds an ephemeral port and the banner line reports the real
   one). SIGTERM/SIGINT drain gracefully: stop accepting, finish every
   in-flight request, flush every reply, then exit. *)

module Sys_ = Incll.System

let usage =
  {|usage: incll_server --listen ADDR [options]
  --listen ADDR         unix:/path/to.sock or tcp:host:port (required)
  --variant V           MT | MT+ | LOGGING | INCLL       (default INCLL)
  --shards N            shard/domain count                (default 2)
  --policy P            throughput | latency | rto        (default throughput)
  --epoch-ms MS         checkpoint cadence                (default 16)
  --queue-capacity N    per-shard request queue bound     (default 1024)
  --batch N             max requests per shard dequeue    (default 64)|}

let config_for policy epoch_ms =
  {
    Sys_.default_config with
    Sys_.nvm =
      Nvm.Config.with_policy
        {
          Nvm.Config.default with
          Nvm.Config.size_bytes = 64 * 1024 * 1024;
          extlog_bytes = 4 * 1024 * 1024;
        }
        policy;
    epoch_len_ns = epoch_ms *. 1e6;
  }

let () =
  let listen = ref None in
  let variant = ref Sys_.Incll in
  let shards = ref 2 in
  let policy = ref Nvm.Config.Throughput in
  let epoch_ms = ref 16.0 in
  let queue_capacity = ref 1024 in
  let batch = ref 64 in
  let bad msg =
    prerr_endline msg;
    prerr_endline usage;
    exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--listen" :: a :: rest ->
        (match Wire.Client.addr_of_string a with
        | addr -> listen := Some addr
        | exception Invalid_argument m -> bad m);
        parse rest
    | "--variant" :: v :: rest ->
        variant := Sys_.variant_of_string v;
        parse rest
    | "--shards" :: v :: rest ->
        shards := int_of_string v;
        parse rest
    | "--policy" :: v :: rest ->
        (match Nvm.Config.policy_of_string v with
        | p -> policy := p
        | exception Invalid_argument _ ->
            bad ("unknown policy " ^ v ^ " (throughput|latency|rto)"));
        parse rest
    | "--epoch-ms" :: v :: rest ->
        epoch_ms := float_of_string v;
        parse rest
    | "--queue-capacity" :: v :: rest ->
        queue_capacity := int_of_string v;
        parse rest
    | "--batch" :: v :: rest ->
        batch := int_of_string v;
        parse rest
    | x :: _ -> bad ("unknown argument " ^ x)
  in
  parse (List.tl (Array.to_list Sys.argv));
  let listen =
    match !listen with
    | Some a -> a
    | None ->
        prerr_endline "--listen is required";
        prerr_endline usage;
        exit 2
  in
  if !shards < 1 then bad "--shards must be >= 1";
  let srv =
    Server.Engine.start
      ~config:(config_for !policy !epoch_ms)
      ~queue_capacity:!queue_capacity ~batch:!batch ~variant:!variant
      ~shards:!shards listen
  in
  Printf.printf "incll_server listening on %s — %s, %d shard(s), %s policy\n%!"
    (Wire.Client.string_of_addr (Server.Engine.addr srv))
    (Sys_.variant_name !variant)
    !shards
    (Nvm.Config.policy_name !policy);
  let stop_requested = Atomic.make false in
  let on_signal _ = Atomic.set stop_requested true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  while not (Atomic.get stop_requested) do
    Unix.sleepf 0.05
  done;
  prerr_endline "incll_server: draining...";
  Server.Engine.stop srv;
  prerr_endline "incll_server: drained, bye"
