(* Diff two `bench --json` reports and gate on throughput regressions.

   Usage: bench_compare [--threshold F] [--force] BASELINE.json NEW.json

   Rows are matched within each table by their non-numeric cells (the
   workload / dist / size labels); numeric cells are compared column by
   column. Only throughput columns (header containing "Mops" or naming a
   variant) gate the exit code: lower-is-worse, and a drop beyond the
   threshold (default 10%) is a regression.

   Schema-v3 reports additionally carry a top-level "latency" section
   (from `bench --only latency`); its simulated-clock p50/p99/p999 and
   per-cause stall totals are gated higher-is-worse.

   With --improve / --improve-stall the tool runs in improvement-gate
   mode instead: regression gating is skipped (the reports are expected
   to differ — e.g. different checkpoint policies) and the exit code
   demands that the named latency percentile / stall total got at least
   FACTOR times better in the new report.

   Exit codes: 0 no regression, 1 regression(s) found, 2 usage error,
   3 unreadable/incompatible reports. *)

module J = Obs.Json

(* Default threshold: the BENCH_COMPARE_THRESHOLD environment variable if
   set (so CI can tighten or loosen the gate without editing the recipe),
   else 10%. --threshold beats both. *)
let threshold =
  ref
    (match Sys.getenv_opt "BENCH_COMPARE_THRESHOLD" with
    | Some v -> (
        match float_of_string_opt v with
        | Some f when f >= 0.0 -> f
        | _ ->
            prerr_endline
              ("bench_compare: ignoring invalid BENCH_COMPARE_THRESHOLD=" ^ v);
            0.10)
    | None -> 0.10)

let force = ref false

(* --improve MODE:PCTL:FACTOR / --improve-stall MODE:CAUSE:FACTOR specs:
   improvement-gate mode, checked instead of the regression gates. *)
let improves : (string * string * float) list ref = ref []
let improve_stalls : (string * string * float) list ref = ref []

let usage_exit () =
  prerr_endline
    "usage: bench_compare [--threshold F] [--force]\n\
     \       [--improve MODE:PCTL:FACTOR] [--improve-stall MODE:CAUSE:FACTOR]\n\
     \       BASELINE.json NEW.json\n\
     \  --threshold F  relative throughput drop that fails the gate\n\
     \                 (default: $BENCH_COMPARE_THRESHOLD if set, else\n\
     \                 0.10 = 10%)\n\
     \  --force        compare even when the run metadata is incompatible\n\
     \  --improve MODE:PCTL:FACTOR\n\
     \                 improvement-gate mode (repeatable; disables the\n\
     \                 regression gates): the latency section's merged PCTL\n\
     \                 (e.g. p999) of MODE (open/closed) must be at least\n\
     \                 FACTOR x smaller in NEW than in BASELINE\n\
     \  --improve-stall MODE:CAUSE:FACTOR\n\
     \                 same, for the per-cause stalled time (e.g.\n\
     \                 open:epoch_advance:1.0 = must not grow)";
  exit 2

let fail_input fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("bench_compare: " ^ msg);
      exit 3)
    fmt

let read_report path =
  let contents =
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    with Sys_error msg -> fail_input "%s" msg
  in
  match J.of_string contents with
  | j -> j
  | exception J.Parse_error msg -> fail_input "%s: %s" path msg

(* ------------------------------------------------------------- numbers *)

(* Numeric cells come in several shapes: "3.14", "1,234", "+10.3%",
   "2.41±0.12%". Strip separators, take the value before any "±", drop a
   trailing "%". Returns None for labels ("YCSB_A", "uniform", "n/a"). *)
let cell_number s =
  let s = String.trim s in
  let s =
    (* "±" is two bytes in UTF-8 (0xC2 0xB1). *)
    let rec find_pm i =
      if i + 1 >= String.length s then None
      else if Char.code s.[i] = 0xC2 && Char.code s.[i + 1] = 0xB1 then Some i
      else find_pm (i + 1)
    in
    match find_pm 0 with Some i -> String.sub s 0 i | None -> s
  in
  let s =
    let n = String.length s in
    if n > 0 && s.[n - 1] = '%' then String.sub s 0 (n - 1) else s
  in
  let buf = Buffer.create (String.length s) in
  String.iter (fun c -> if c <> ',' then Buffer.add_char buf c) s;
  let s = Buffer.contents buf in
  if s = "" then None else float_of_string_opt s

(* ---------------------------------------------------------------- meta *)

let meta_field report name =
  match J.find_path report [ "meta"; name ] with
  | Some v -> v
  | None -> (
      (* Schema-1 reports kept the run parameters under "opts" and had
         no version field; surface that as version 1. *)
      match J.find_path report [ "opts"; name ] with
      | Some v -> v
      | None -> if name = "schema_version" then J.Int 1 else J.Null)

let check_meta a b =
  let mismatches =
    List.filter_map
      (fun name ->
        let va = meta_field a name and vb = meta_field b name in
        if va <> vb then
          Some (Printf.sprintf "%s: %s vs %s" name (J.to_string va) (J.to_string vb))
        else None)
      [
        "schema_version"; "scale"; "keys"; "threads"; "ops_per_thread";
        "epoch_ms"; "arrival_rate"; "latency_threshold_ns";
      ]
  in
  if mismatches <> [] then begin
    let msg = String.concat ", " mismatches in
    if !force then
      Printf.eprintf "bench_compare: metadata mismatch (continuing, --force): %s\n" msg
    else
      fail_input "incompatible reports (%s); re-run with matching options or pass --force"
        msg
  end;
  (* A different seed is a different workload stream: comparable, but
     noisier — worth a note, not a refusal. *)
  if meta_field a "seed" <> meta_field b "seed" then
    prerr_endline "bench_compare: note: seeds differ (different workload streams)";
  (* Different checkpoint policies are deliberately comparable (the
     improvement gates exist exactly for that); pre-policy baselines
     have no field at all. Note, don't refuse. *)
  if meta_field a "policy" <> meta_field b "policy" then
    prerr_endline "bench_compare: note: checkpoint policies differ"

(* -------------------------------------------------------------- tables *)

let strings_of = function
  | J.List l ->
      List.map (function J.String s -> s | v -> J.to_string v) l
  | _ -> []

let table_rows tbl =
  match J.find tbl "rows" with
  | Some (J.List rows) -> List.map strings_of rows
  | _ -> []

let tables_of report =
  match J.find report "tables" with
  | Some (J.Obj kvs) -> kvs
  | _ -> fail_input "report has no \"tables\" object"

(* A row's identity is its label cells — everything that does not parse
   as a number — plus the axis columns ("threads", "keys", ...), which
   are numeric but positional. *)
let axis_headers = [ "threads"; "keys"; "latency ns"; "epoch ms"; "workload"; "dist" ]

let row_key_with_axes headers row =
  let parts =
    List.map2
      (fun h c ->
        if List.mem h axis_headers || cell_number c = None then c else "")
      headers row
  in
  String.concat "|" (List.filter (fun c -> c <> "") parts)

let contains_substring ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let gated_header h =
  contains_substring ~sub:"Mops" h
  || List.mem h [ "MT"; "MT+"; "INCLL"; "LOGGING" ]

let compare_tables a b =
  let ta = tables_of a and tb = tables_of b in
  let regressions = ref [] in
  let compared = ref 0 in
  List.iter
    (fun (name, tbl_a) ->
      match List.assoc_opt name tb with
      | None -> Printf.printf "table %-20s only in baseline — skipped\n" name
      | Some tbl_b ->
          let headers = strings_of (Option.value ~default:J.Null (J.find tbl_a "columns")) in
          let rows_b = table_rows tbl_b in
          let index_b =
            List.map (fun r -> (row_key_with_axes headers r, r)) rows_b
          in
          List.iter
            (fun row_a ->
              let key = row_key_with_axes headers row_a in
              match List.assoc_opt key index_b with
              | None ->
                  Printf.printf "%s | %s: row missing in new report\n" name key
              | Some row_b ->
                  List.iteri
                    (fun i h ->
                      let ca = List.nth_opt row_a i and cb = List.nth_opt row_b i in
                      match (ca, cb) with
                      | Some ca, Some cb -> (
                          match (cell_number ca, cell_number cb) with
                          | Some va, Some vb when gated_header h ->
                              incr compared;
                              let delta =
                                if va = 0.0 then 0.0 else (vb -. va) /. va
                              in
                              let flag =
                                if delta < -. !threshold then begin
                                  regressions :=
                                    Printf.sprintf "%s | %s | %s: %.3f -> %.3f (%+.1f%%)"
                                      name key h va vb (delta *. 100.0)
                                    :: !regressions;
                                  "  << REGRESSION"
                                end
                                else ""
                              in
                              Printf.printf "%s | %-28s | %-14s %10.3f -> %10.3f  %+6.1f%%%s\n"
                                name key h va vb (delta *. 100.0) flag
                          | _ -> ())
                      | _ -> ())
                    headers)
            (table_rows tbl_a))
    ta;
  (!compared, List.rev !regressions)

(* ------------------------------------------------------------- latency *)

(* Schema v3: gate the top-level "latency" section — the simulated-clock
   percentiles of the merged per-op histogram and the per-cause stalled
   time, both higher-is-worse (they are tail sizes, not throughput). The
   wall histograms are host noise and ignored. A pair where only one
   report has the section means the schema (or the bench selection)
   drifted; refuse rather than silently passing an ungated report. *)
let latency_percentiles = [ "p50"; "p99"; "p999" ]

let compare_latency a b =
  match (J.find a "latency", J.find b "latency") with
  | None, None -> (0, [])
  | Some _, None | None, Some _ ->
      if !force then begin
        prerr_endline
          "bench_compare: latency section present in only one report \
           (continuing, --force)";
        (0, [])
      end
      else
        fail_input
          "latency section present in only one report; regenerate both with \
           the same bench selection or pass --force"
  | Some la, Some lb ->
      let regressions = ref [] and compared = ref 0 in
      let modes = match la with J.Obj kvs -> List.map fst kvs | _ -> [] in
      List.iter
        (fun mode ->
          let num side path =
            Option.bind (J.find_path side (mode :: path)) J.to_float_opt
          in
          let gate label va vb =
            incr compared;
            let delta = if va = 0.0 then 0.0 else (vb -. va) /. va in
            let flag =
              if delta > !threshold then begin
                regressions :=
                  Printf.sprintf "latency | %s | %s: %.0f -> %.0f ns (%+.1f%%)"
                    mode label va vb (delta *. 100.0)
                  :: !regressions;
                "  << REGRESSION"
              end
              else ""
            in
            Printf.printf
              "latency | %-28s | %-14s %10.0f -> %10.0f  %+6.1f%%%s\n" mode
              label va vb (delta *. 100.0) flag
          in
          List.iter
            (fun p ->
              match (num la [ "merged"; p ], num lb [ "merged"; p ]) with
              | Some va, Some vb -> gate p va vb
              | _ -> ())
            latency_percentiles;
          (* Per-shard p99 deltas localize a merged regression to one
             shard before the workload gets the blame; informational. *)
          (match
             ( J.find_path la [ mode; "shards" ],
               J.find_path lb [ mode; "shards" ] )
           with
          | Some (J.List sa), Some (J.List sb)
            when List.length sa = List.length sb ->
              List.iteri
                (fun i (ha, hb) ->
                  match
                    ( Option.bind (J.find ha "p99") J.to_float_opt,
                      Option.bind (J.find hb "p99") J.to_float_opt )
                  with
                  | Some va, Some vb when va > 0.0 ->
                      Printf.printf
                        "latency | %s | shard%d p99: %.0f -> %.0f ns (%+.1f%%)\n"
                        mode i va vb
                        ((vb -. va) /. va *. 100.0)
                  | _ -> ())
                (List.combine sa sb)
          | _ -> ());
          (* Robustness telemetry (remote mode): client-visible fault
             work is higher-is-worse — a serving change that makes the
             session layer retry, reconnect or back off more has
             regressed even if latency percentiles held up. dedup_hits
             is informational (the probe provokes at least one). *)
          (match J.find_path la [ mode; "robust" ] with
          | Some (J.Obj _) ->
              List.iter
                (fun metric ->
                  match
                    ( num la [ "robust"; metric ],
                      num lb [ "robust"; metric ] )
                  with
                  | Some va, Some vb ->
                      if va > 0.0 then gate ("robust." ^ metric) va vb
                      else if vb > 0.0 then
                        Printf.printf
                          "latency | %s | robust.%s appeared: 0 -> %.0f\n"
                          mode metric vb
                  | _ -> ())
                [ "retries"; "reconnects"; "backoff_ns" ];
              (match
                 ( num la [ "robust"; "dedup_hits" ],
                   num lb [ "robust"; "dedup_hits" ] )
               with
              | Some va, Some vb ->
                  Printf.printf
                    "latency | %s | robust.dedup_hits: %.0f -> %.0f\n" mode va
                    vb
              | _ -> ())
          | _ -> ());
          (* Per-cause stalled time: a cause that grows (or appears) must
             not slip through just because throughput held up. *)
          match J.find_path la [ mode; "stall_totals" ] with
          | Some (J.Obj causes) ->
              List.iter
                (fun (cause, _) ->
                  match
                    ( num la [ "stall_totals"; cause; "total_ns" ],
                      num lb [ "stall_totals"; cause; "total_ns" ] )
                  with
                  | Some va, Some vb ->
                      if va > 0.0 then gate ("stall." ^ cause) va vb
                      else if vb > 0.0 then
                        Printf.printf
                          "latency | %s | stall.%s appeared: 0 -> %.0f ns\n"
                          mode cause vb
                  | _ -> ())
                causes
          | _ -> ())
        modes;
      (!compared, List.rev !regressions)


(* ------------------------------------------------- improvement gates *)

let parse_improve_spec flag v =
  match String.split_on_char ':' v with
  | [ mode; what; factor ] -> (
      match float_of_string_opt factor with
      | Some f when f > 0.0 -> (mode, what, f)
      | _ ->
          prerr_endline
            (Printf.sprintf "bench_compare: bad FACTOR in %s %s" flag v);
          usage_exit ())
  | _ ->
      prerr_endline
        (Printf.sprintf "bench_compare: %s expects MODE:WHAT:FACTOR, got %s"
           flag v);
      usage_exit ()

(* Improvement-gate mode: each spec demands NEW <= BASELINE / FACTOR on a
   latency-section cell. Used to enforce "the latency policy makes the
   open-loop p999 at least 2x better than the committed default-policy
   baseline" — a cross-policy comparison where the regression gates
   would misfire by design (stalled time deliberately moves from
   epoch_advance to clwb_sweep). *)
let check_improvements a b =
  let failures = ref [] and compared = ref 0 in
  let cell report mode path =
    Option.bind (J.find_path report ("latency" :: mode :: path)) J.to_float_opt
  in
  let gate label mode path factor =
    match (cell a mode path, cell b mode path) with
    | Some va, Some vb ->
        incr compared;
        let ratio = if vb > 0.0 then va /. vb else infinity in
        let ok = vb <= (va /. factor) +. 1e-9 in
        Printf.printf
          "improve | %-6s | %-22s %12.0f -> %12.0f  (%.2fx, need >= %.2fx)%s\n"
          mode label va vb ratio factor
          (if ok then "" else "  << NOT MET");
        if not ok then
          failures :=
            Printf.sprintf "%s %s: %.0f -> %.0f (%.2fx < %.2fx)" mode label va
              vb ratio factor
            :: !failures
    | _ ->
        failures :=
          Printf.sprintf "%s %s: missing in one report" mode label
          :: !failures
  in
  List.iter
    (fun (mode, pctl, factor) -> gate pctl mode [ "merged"; pctl ] factor)
    !improves;
  List.iter
    (fun (mode, cause, factor) ->
      gate ("stall." ^ cause) mode [ "stall_totals"; cause; "total_ns" ] factor)
    !improve_stalls;
  (!compared, List.rev !failures)

let () =
  let files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--threshold" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f >= 0.0 -> threshold := f
        | _ -> usage_exit ());
        parse rest
    | "--force" :: rest ->
        force := true;
        parse rest
    | "--improve" :: v :: rest ->
        improves := parse_improve_spec "--improve" v :: !improves;
        parse rest
    | "--improve-stall" :: v :: rest ->
        improve_stalls := parse_improve_spec "--improve-stall" v :: !improve_stalls;
        parse rest
    | ("--help" | "-h") :: _ -> usage_exit ()
    | x :: _ when String.length x > 1 && x.[0] = '-' ->
        prerr_endline ("bench_compare: unknown option " ^ x);
        usage_exit ()
    | f :: rest ->
        files := f :: !files;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  match List.rev !files with
  | [ base; next ] ->
      let a = read_report base and b = read_report next in
      if !improves <> [] || !improve_stalls <> [] then begin
        (* Cross-policy comparisons are expected to differ in the policy
           meta field; everything else must still match. *)
        check_meta a b;
        let compared, failures = check_improvements a b in
        if compared = 0 && failures = [] then
          fail_input "no improvement cells found (wrong files?)";
        Printf.printf "%d improvement cell(s) checked\n" compared;
        if failures = [] then print_endline "all improvement gates met"
        else begin
          Printf.printf "%d improvement gate(s) NOT met:\n"
            (List.length failures);
          List.iter (fun r -> print_endline ("  " ^ r)) failures;
          exit 1
        end
      end
      else begin
        check_meta a b;
        let compared_t, reg_t = compare_tables a b in
        let compared_l, reg_l = compare_latency a b in
        let compared = compared_t + compared_l in
        let regressions = reg_t @ reg_l in
        if compared = 0 then
          fail_input "no comparable gated cells found (wrong files?)";
        Printf.printf "%d gated cell(s) compared, threshold %.0f%%\n" compared
          (!threshold *. 100.0);
        if regressions = [] then print_endline "no regressions"
        else begin
          Printf.printf "%d regression(s):\n" (List.length regressions);
          List.iter (fun r -> print_endline ("  " ^ r)) regressions;
          exit 1
        end
      end
  | _ -> usage_exit ()
