(* Offline checker for saved NVM images — an fsck for the durable store.

   Loads an image (as a reboot would), reports the epoch state, replays
   recovery, walks and validates every node of every layer, checks the
   allocator chains, and prints an inventory. Read-only with respect to
   the file: all recovery work happens on the in-memory copy.

   Run with: dune exec bin/incll_fsck.exe -- <image-file> [--variant INCLL] *)

module Sys_ = Incll.System

let () =
  let path = ref None in
  let variant = ref Sys_.Incll in
  let rec parse = function
    | [] -> ()
    | "--variant" :: v :: rest ->
        variant := Sys_.variant_of_string v;
        parse rest
    | x :: rest when !path = None ->
        path := Some x;
        parse rest
    | x :: _ ->
        prerr_endline ("unexpected argument " ^ x);
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let path =
    match !path with
    | Some p -> p
    | None ->
        prerr_endline "usage: incll_fsck.exe <image-file> [--variant V]";
        exit 2
  in
  Printf.printf "incll_fsck: %s\n" path;
  let size = Nvm.Image.image_size ~path in
  Printf.printf "  image size        : %d bytes (%d MiB)\n" size
    (size / 1024 / 1024);
  let cfg =
    {
      Sys_.default_config with
      Sys_.nvm = { Nvm.Config.default with Nvm.Config.size_bytes = size };
    }
  in
  let region = Nvm.Image.load cfg.Sys_.nvm ~path in
  Printf.printf "  checksum          : ok\n";
  (if not (Nvm.Superblock.is_formatted region) then begin
     Printf.printf "  superblock        : NOT a formatted incll region\n";
     exit 1
   end);
  Printf.printf "  superblock        : ok (format %Ld)\n"
    (Nvm.Region.read_i64 region Nvm.Layout.off_format);
  (* The heap base depends on the external-log size the image was
     formatted with; reload under the recorded one so chain pointers are
     interpreted against the right layout. *)
  let cfg, region =
    match Nvm.Superblock.recorded_extlog_bytes region with
    | Some n when n <> cfg.Sys_.nvm.Nvm.Config.extlog_bytes ->
        let cfg =
          { cfg with Sys_.nvm = { cfg.Sys_.nvm with Nvm.Config.extlog_bytes = n } }
        in
        (cfg, Nvm.Image.load cfg.Sys_.nvm ~path)
    | _ -> (cfg, region)
  in
  Printf.printf "  external log      : %d bytes\n"
    cfg.Sys_.nvm.Nvm.Config.extlog_bytes;
  let durable_epoch =
    Int64.to_int (Nvm.Region.read_i64 region Nvm.Layout.off_durable_epoch)
  in
  let failed_count =
    Int64.to_int (Nvm.Region.read_i64 region Nvm.Layout.off_failed_count)
  in
  Printf.printf "  durable epoch     : %d (crashed mid-epoch; will roll back)\n"
    durable_epoch;
  Printf.printf "  failed epochs     : %d recorded\n" failed_count;
  (* Transaction records, scanned on the raw image before recovery
     truncates the log: a PREPARE whose id is above the durable
     watermark is dangling (in doubt) — recovery will roll it back. *)
  let wm = Incll.Txn.watermark region in
  Printf.printf "  txn watermark     : %d\n" wm;
  let log = Extlog.Log.attach region in
  let prepares = ref 0 and dangling = ref 0 and commits = ref 0 in
  Extlog.Log.fold_all_records log (fun ~kind ~epoch:_ ~txn_id ~payload:_ ->
      if kind = Extlog.Log.kind_txn_prepare then begin
        incr prepares;
        if txn_id > wm then incr dangling
      end
      else if kind = Extlog.Log.kind_txn_commit then incr commits);
  if !prepares > 0 || !commits > 0 then begin
    Printf.printf "  txn records       : %d PREPARE, %d commit marker(s)\n"
      !prepares !commits;
    if !dangling > 0 then
      Printf.printf
        "  dangling PREPAREs : %d in doubt (recovery rolls them back)\n"
        !dangling
  end
  else Printf.printf "  txn records       : none\n";
  (* Recover on the in-memory copy. *)
  let sys =
    try Sys_.attach ~config:cfg !variant region
    with e ->
      Printf.printf "  RECOVERY FAILED   : %s\n" (Printexc.to_string e);
      exit 1
  in
  (match Sys_.last_recover_stats sys with
  | Some st ->
      Printf.printf "  log replay        : %d entries\n" st.Sys_.replayed_entries;
      if st.Sys_.txns_redone > 0 || st.Sys_.txns_aborted > 0 then
        Printf.printf "  transactions      : %d redone, %d rolled back\n"
          st.Sys_.txns_redone st.Sys_.txns_aborted;
      if st.Sys_.quarantined_chains > 0 then begin
        Printf.printf "  quarantined       : %d chain(s) leaked by recovery\n"
          st.Sys_.quarantined_chains;
        exit 1
      end
  | None -> ());
  (* Eager sweep: force every lazy restore now so validation sees the
     final state. *)
  (match (Sys_.ctx sys, Sys_.durable_alloc sys) with
  | Some ctx, Some da ->
      Incll.Recovery.eager_sweep ctx (Sys_.tree sys) da;
      (try
         Alloc.Durable.check_chains da;
         (* Full invariant pass: acyclic and in-bounds chains, header
            class agreement, and no chunk reachable from two chains. *)
         let report = Alloc.Durable.validate da in
         Printf.printf "  allocator chains  : %d free, %d limbo chunks\n"
           report.Alloc.Durable.free_chunks report.Alloc.Durable.limbo_chunks;
         (match report.Alloc.Durable.errors with
         | [] -> Printf.printf "  chain invariants  : ok\n"
         | errs ->
             List.iter
               (fun (e : Alloc.Durable.chain_error) ->
                 Printf.printf
                   "  chain invariants  : CORRUPT class %d (%s head %d): %s\n"
                   e.Alloc.Durable.cls e.Alloc.Durable.kind
                   e.Alloc.Durable.head e.Alloc.Durable.detail)
               errs;
             exit 1)
       with
      | Failure m ->
          Printf.printf "  allocator chains  : CORRUPT (%s)\n" m;
          exit 1
      | Alloc.Durable.Corrupt_chain { head; at; steps; reason } ->
          Printf.printf
            "  allocator chains  : CORRUPT (chain head %d: %s at %d after %d \
             steps)\n"
            head reason at steps;
          exit 1)
  | _ -> ());
  (try
     Masstree.Tree.validate (Sys_.tree sys);
     Printf.printf "  tree structure    : ok\n"
   with Failure m ->
     Printf.printf "  tree structure    : CORRUPT (%s)\n" m;
     exit 1);
  let leaves = ref 0 and internals = ref 0 in
  Masstree.Tree.iter_nodes (Sys_.tree sys)
    ~leaf:(fun _ -> incr leaves)
    ~internal:(fun _ -> incr internals);
  Printf.printf "  nodes             : %d leaves, %d internals\n" !leaves
    !internals;
  Printf.printf "  entries           : %d\n"
    (Masstree.Tree.cardinal (Sys_.tree sys));
  print_endline "fsck: clean"
