(* Raw wall-clock microbenchmark of the NVM simulator's hot paths.

   Unlike bench/main.exe (which reports *simulated*-clock throughput),
   this tool measures how fast the simulator itself runs on the host:
   stores/s and loads/s against a raw region, put/get Mops through the
   full YCSB-A stack, and the allocation rate of each loop (via
   Gc.allocated_bytes). It exists so that wall-clock regressions of the
   simulator are visible next to the simulated-throughput gate of
   bin/bench_compare.

   Usage: microbench [options]
     --stores N    raw store/load iterations          (default 2_000_000)
     --spans N     16-byte unaligned span stores      (default 500_000)
     --keys N      YCSB-A key-space size              (default 20_000)
     --ops N       YCSB-A operations per thread       (default 20_000)
     --threads N   YCSB-A worker domains / shards     (default 2)
     --seed N      workload seed                      (default 1)
     --json FILE   write a machine-readable report
     --min-mops F  exit 1 if the YCSB-A wall-clock Mops falls below F
                   (0 = report only; used by the CI smoke gate)

   The simulated counters (writes/reads/clwb/sfence/sim_ns) of the
   YCSB-A section are included in the report: two builds that disagree
   there are not comparable (the memory-event stream itself changed). *)

module R = Bench_harness.Runner
module Y = Workload.Ycsb

type opts = {
  mutable stores : int;
  mutable spans : int;
  mutable keys : int;
  mutable ops : int;
  mutable threads : int;
  mutable seed : int;
  mutable json_file : string option;
  mutable min_mops : float;
}

let opts =
  {
    stores = 2_000_000;
    spans = 500_000;
    keys = 20_000;
    ops = 20_000;
    threads = 2;
    seed = 1;
    json_file = None;
    min_mops = 0.0;
  }

let usage () =
  print_endline
    "usage: microbench [--stores N] [--spans N] [--keys N] [--ops N]\n\
     \                  [--threads N] [--seed N] [--json FILE] [--min-mops F]";
  exit 2

let parse_args () =
  let rec go = function
    | [] -> ()
    | "--stores" :: v :: rest ->
        opts.stores <- int_of_string v;
        go rest
    | "--spans" :: v :: rest ->
        opts.spans <- int_of_string v;
        go rest
    | "--keys" :: v :: rest ->
        opts.keys <- int_of_string v;
        go rest
    | "--ops" :: v :: rest ->
        opts.ops <- int_of_string v;
        go rest
    | "--threads" :: v :: rest ->
        opts.threads <- int_of_string v;
        go rest
    | "--seed" :: v :: rest ->
        opts.seed <- int_of_string v;
        go rest
    | "--json" :: v :: rest ->
        opts.json_file <- Some v;
        go rest
    | "--min-mops" :: v :: rest ->
        opts.min_mops <- float_of_string v;
        go rest
    | ("--help" | "-h") :: _ -> usage ()
    | x :: _ ->
        prerr_endline ("microbench: unknown argument " ^ x);
        usage ()
  in
  go (List.tl (Array.to_list Sys.argv))

(* ------------------------------------------------------------- harness *)

type sample = {
  bench : string;
  iters : int;
  wall_s : float;
  alloc_bytes : float;  (* minor+major words allocated, in bytes *)
  sim_ns : float;  (* simulated time charged by the loop *)
}

let results : sample list ref = ref []

let mops s = float_of_int s.iters /. s.wall_s /. 1e6

let report s =
  results := s :: !results;
  Printf.printf "  %-24s %9.2f ns/op  %7.2f Mops  %8.1f B/op alloc\n%!"
    s.bench
    (s.wall_s *. 1e9 /. float_of_int s.iters)
    (mops s)
    (s.alloc_bytes /. float_of_int s.iters)

(* Run [f iters] once to warm up (10% of the budget), then measured. *)
let time ~bench ~iters ~sim_of f =
  f (max 1 (iters / 10));
  let sim0 = sim_of () in
  let a0 = Gc.allocated_bytes () in
  let t0 = Unix.gettimeofday () in
  f iters;
  let t1 = Unix.gettimeofday () in
  let a1 = Gc.allocated_bytes () in
  report
    {
      bench;
      iters;
      wall_s = Float.max (t1 -. t0) 1e-9;
      alloc_bytes = a1 -. a0;
      sim_ns = sim_of () -. sim0;
    }

(* --------------------------------------------------------- raw region *)

let region_mb = 8

let fresh_region () =
  Nvm.Region.create
    {
      Nvm.Config.default with
      Nvm.Config.size_bytes = region_mb * 1024 * 1024;
      extlog_bytes = 1024 * 1024;
      crash_support = Nvm.Config.Counting;
    }

let raw_benches () =
  Printf.printf "raw region (Counting mode, %d MiB):\n" region_mb;
  let size = region_mb * 1024 * 1024 in
  let lo = 4096 in
  let hi = size - 4096 in
  (* Sequential sweep: a fresh line every 8 stores, so the LLC model is
     exercised; the hot variant re-stores a 64-line working set. *)
  let region = fresh_region () in
  let sim_of () = Nvm.Stats.sim_ns (Nvm.Region.stats region) in
  let addr = ref lo in
  time ~bench:"store_i64 seq" ~iters:opts.stores ~sim_of (fun n ->
      for _ = 1 to n do
        addr := (if !addr >= hi then lo else !addr + 8);
        Nvm.Region.write_i64 region !addr 0x5eed_f00d_dead_beefL
      done);
  time ~bench:"store_i64 hot64" ~iters:opts.stores ~sim_of (fun n ->
      for i = 1 to n do
        Nvm.Region.write_i64 region (lo + (i land 511) * 8)
          0x0123_4567_89ab_cdefL
      done);
  time ~bench:"load_i64 seq" ~iters:opts.stores ~sim_of (fun n ->
      let acc = ref 0L in
      for _ = 1 to n do
        addr := (if !addr >= hi then lo else !addr + 8);
        acc := Int64.add !acc (Nvm.Region.read_i64 region !addr)
      done;
      ignore (Sys.opaque_identity !acc));
  (* Unaligned 16-byte spans: the multi-line split path that value writes
     take (values are not 8-aligned in the tree heap). *)
  let payload = Bytes.make 16 'x' in
  time ~bench:"write_bytes 16B" ~iters:opts.spans ~sim_of (fun n ->
      for i = 1 to n do
        Nvm.Region.write_bytes region (lo + 3 + (i land 4095) * 24) payload
      done);
  time ~bench:"read_bytes 16B" ~iters:opts.spans ~sim_of (fun n ->
      for i = 1 to n do
        ignore
          (Sys.opaque_identity
             (Nvm.Region.read_bytes region
                (lo + 3 + (i land 4095) * 24)
                ~len:16))
      done)

(* -------------------------------------------------------------- ycsb-a *)

let ycsb_counters = ref []

let ycsb_bench () =
  Printf.printf
    "YCSB-A through the full INCLL stack (%d keys, %d threads x %d ops):\n"
    opts.keys opts.threads opts.ops;
  let a0 = Gc.allocated_bytes () in
  let r =
    R.run ~seed:opts.seed ~threads:opts.threads ~ops_per_thread:opts.ops
      ~variant:Incll.System.Incll ~mix:Y.A ~dist:Y.Uniform ~nkeys:opts.keys ()
  in
  let a1 = Gc.allocated_bytes () in
  let s =
    {
      bench = "ycsb_a put/get";
      iters = r.R.ops;
      wall_s = Float.max r.R.wall_s 1e-9;
      (* Domain-local: excludes worker-domain allocation when threads>1,
         so compare like with like (same --threads). *)
      alloc_bytes = a1 -. a0;
      sim_ns = r.R.sim_total_s *. 1e9;
    }
  in
  report s;
  Printf.printf
    "  %-24s counters: writes=%d reads=%d clwb=%d sfence=%d sim_ns=%.0f\n%!"
    "" r.R.writes r.R.reads r.R.clwbs r.R.sfences (r.R.sim_total_s *. 1e9);
  ycsb_counters :=
    [
      ("writes", Obs.Json.Int r.R.writes);
      ("reads", Obs.Json.Int r.R.reads);
      ("clwb", Obs.Json.Int r.R.clwbs);
      ("sfence", Obs.Json.Int r.R.sfences);
      ("wbinvd", Obs.Json.Int r.R.wbinvds);
      ("sim_ns", Obs.Json.Float (r.R.sim_total_s *. 1e9));
      ("mops_sim", Obs.Json.Float r.R.mops_sim);
    ];
  mops s

(* ---------------------------------------------------------------- json *)

let write_json path ~ycsb_mops =
  let sample_json s =
    Obs.Json.Obj
      [
        ("iters", Obs.Json.Int s.iters);
        ("wall_s", Obs.Json.Float s.wall_s);
        ("mops_wall", Obs.Json.Float (mops s));
        ( "ns_per_op",
          Obs.Json.Float (s.wall_s *. 1e9 /. float_of_int s.iters) );
        ( "alloc_bytes_per_op",
          Obs.Json.Float (s.alloc_bytes /. float_of_int s.iters) );
        ("sim_ns", Obs.Json.Float s.sim_ns);
      ]
  in
  let j =
    Obs.Json.Obj
      [
        ( "meta",
          Obs.Json.Obj
            [
              ("schema_version", Obs.Json.Int 1);
              ("stores", Obs.Json.Int opts.stores);
              ("spans", Obs.Json.Int opts.spans);
              ("keys", Obs.Json.Int opts.keys);
              ("ops_per_thread", Obs.Json.Int opts.ops);
              ("threads", Obs.Json.Int opts.threads);
              ("seed", Obs.Json.Int opts.seed);
            ] );
        ( "benches",
          Obs.Json.Obj
            (List.rev_map (fun s -> (s.bench, sample_json s)) !results) );
        ("ycsb_counters", Obs.Json.Obj !ycsb_counters);
        ("ycsb_mops_wall", Obs.Json.Float ycsb_mops);
      ]
  in
  let oc = open_out path in
  output_string oc (Obs.Json.to_string_pretty j);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  [json: %s]\n" path

let () =
  parse_args ();
  print_endline "NVM simulator wall-clock microbenchmark";
  raw_benches ();
  let ycsb_mops = ycsb_bench () in
  (match opts.json_file with
  | Some path -> write_json path ~ycsb_mops
  | None -> ());
  if opts.min_mops > 0.0 && ycsb_mops < opts.min_mops then begin
    Printf.eprintf
      "microbench: YCSB-A wall-clock %.2f Mops below the --min-mops %.2f gate\n"
      ycsb_mops opts.min_mops;
    exit 1
  end
