(* A small interactive/scripted shell over a durable store — handy for
   poking at the system and for demos.

   Run with: dune exec bin/incll_cli.exe
     [-- --variant INCLL --shards 2 --policy latency]
   or against a running bin/incll_server.exe over the wire protocol:
     dune exec bin/incll_cli.exe -- --connect unix:/tmp/incll.sock [--retry]
   (--retry routes commands through the fault-tolerant Wire.Session:
   retry with backoff, transparent reconnect, exactly-once stamps).
   Then type `help` at the prompt, or pipe a script on stdin. *)

module S = Store.Sharded
module Sys_ = Incll.System

let usage =
  {|commands:
  put <key> <value>       insert or update
  get <key>               look a key up
  del <key>               remove a key
  scan <start> <n>        n consecutive pairs from the smallest key >= start
  count                   number of entries
  begin                   start a multi-key transaction
  tput <key> <value>      buffer a put in the open transaction
  tdel <key>              buffer a remove in the open transaction
  tget <key>              read-your-writes lookup inside the transaction
  commit                  two-phase commit of the open transaction
  abort                   discard the open transaction
  checkpoint              force an epoch boundary (durability point)
  crash [seed]            power failure (PCSO per-line prefixes)
  recover                 rebuild from the persistent image (prints the
                          per-phase time breakdown)
  stats                   persistence-event counters
  stats --json            the same plus histograms/metrics, as JSON
  stats --prom            merged metrics in Prometheus text exposition
  trace on|off            enable/disable the persistence-event trace ring
  trace dump              print buffered trace events (JSON; non-destructive)
  trace clear             empty the trace ring(s)
  validate                walk and check the whole structure
  save <file>             write the persisted NVM image to a file
  load <file>             reboot from a saved image (single shard)
  replay <file>           apply a trace file (PUT/GET/DEL/SCAN lines)
  help                    this text
  quit                    exit|}

let remote_usage =
  {|commands (remote):
  put <key> <value>       insert or update on the server
  get <key>               look a key up (read-your-writes inside a txn)
  del <key>               remove a key
  scan <start> <n>        n consecutive pairs from the smallest key >= start
  count                   number of entries (paged scans)
  begin                   open a server-side transaction on this connection
  tput <key> <value>      buffer a put in the open transaction
  tdel <key>              buffer a remove in the open transaction
  tget <key>              read-your-writes lookup (same as get remotely)
  commit                  durable cross-shard commit of the open transaction
  abort                   discard the open transaction
  stats                   server metrics as JSON (stats --json is the same)
  stats --prom            server metrics in Prometheus text exposition
  help                    this text
  quit                    exit|}

(* One remote backend: the shell loop below is written against this
   record so the raw [Wire.Client] (one connection, errors surface) and
   the fault-tolerant [Wire.Session] (--retry: backoff, reconnect,
   exactly-once stamps) plug in interchangeably. *)
type remote_ops = {
  r_put : string -> string -> unit;
  r_get : string -> string option;
  r_tget : string -> string option;
  r_del : string -> bool;
  r_scan : start:string -> n:int -> (string * string) list;
  r_txn_begin : unit -> unit;
  r_txn_put : string -> string -> unit;
  r_txn_remove : string -> unit;
  r_txn_commit : unit -> unit;
  r_txn_abort : unit -> unit;
  r_stats : Wire.Proto.stats_format -> string;
  r_close : unit -> unit;
}

let client_ops addr =
  let module C = Wire.Client in
  let c = C.connect addr in
  {
    r_put = C.put c;
    r_get = C.get c;
    (* Server-side txns buffer on the connection; a remote read inside
       one is just a read. *)
    r_tget = C.get c;
    r_del = C.delete c;
    r_scan = (fun ~start ~n -> C.scan c ~start ~n);
    r_txn_begin = (fun () -> C.txn_begin c);
    r_txn_put = C.txn_put c;
    r_txn_remove = C.txn_remove c;
    r_txn_commit = (fun () -> C.txn_commit c);
    r_txn_abort = (fun () -> C.txn_abort c);
    r_stats = C.stats c;
    r_close = (fun () -> C.close c);
  }

let session_ops addr =
  let module S = Wire.Session in
  let s = S.connect addr in
  {
    r_put = S.put s;
    r_get = S.get s;
    (* Session txns buffer client-side: read-your-writes needs the
       local buffer, not the server. *)
    r_tget = (fun k -> if S.txn_active s then S.txn_get s k else S.get s k);
    r_del = S.delete s;
    r_scan = (fun ~start ~n -> S.scan s ~start ~n);
    r_txn_begin = (fun () -> S.txn_begin s);
    r_txn_put = S.txn_put s;
    r_txn_remove = S.txn_remove s;
    r_txn_commit = (fun () -> S.txn_commit s);
    r_txn_abort = (fun () -> S.txn_abort s);
    r_stats = S.stats s;
    r_close = (fun () -> S.close s);
  }

(* The same shell, but every command is a wire round-trip to a running
   bin/incll_server.exe. Crash/recover/save/load stay local-only: the
   server owns its region. *)
let remote_main ~retry addr =
  let module C = Wire.Client in
  let module P = Wire.Proto in
  let c = if retry then session_ops addr else client_ops addr in
  Printf.printf "incll shell — connected to %s%s. Type `help`.\n%!"
    (C.string_of_addr addr)
    (if retry then " (retrying session)" else "");
  let interactive = Unix.isatty Unix.stdin in
  (try
     while true do
       if interactive then Printf.printf "incll> %!";
       let line = input_line stdin in
       let parts =
         String.split_on_char ' ' (String.trim line)
         |> List.filter (fun s -> s <> "")
       in
       (try
          match parts with
          | [] -> ()
          | [ "help" ] -> print_endline remote_usage
          | [ "quit" ] | [ "exit" ] -> raise Exit
          | [ "put"; k; v ] ->
              c.r_put k v;
              print_endline "ok"
          | [ "get"; k ] -> (
              match c.r_get k with
              | Some v -> Printf.printf "%S\n" v
              | None -> print_endline "(not found)")
          | [ "tget"; k ] -> (
              match c.r_tget k with
              | Some v -> Printf.printf "%S\n" v
              | None -> print_endline "(not found)")
          | [ "del"; k ] ->
              print_endline (if c.r_del k then "ok" else "(not found)")
          | [ "scan"; start; n ] ->
              List.iter
                (fun (k, v) -> Printf.printf "  %S -> %S\n" k v)
                (c.r_scan ~start ~n:(int_of_string n))
          | [ "count" ] ->
              let rec page start acc =
                match c.r_scan ~start ~n:512 with
                | [] -> acc
                | pairs ->
                    let last, _ = List.nth pairs (List.length pairs - 1) in
                    page (last ^ "\x00") (acc + List.length pairs)
              in
              Printf.printf "%d entries\n" (page "" 0)
          | [ "begin" ] ->
              c.r_txn_begin ();
              print_endline "txn open"
          | [ "tput"; k; v ] ->
              c.r_txn_put k v;
              print_endline "buffered"
          | [ "tdel"; k ] ->
              c.r_txn_remove k;
              print_endline "buffered"
          | [ "commit" ] ->
              c.r_txn_commit ();
              print_endline "committed durably"
          | [ "abort" ] ->
              c.r_txn_abort ();
              print_endline "aborted (no shard was touched)"
          | [ "stats" ] | [ "stats"; "--json" ] ->
              print_endline (c.r_stats P.Stats_json)
          | [ "stats"; "--prom" ] -> print_string (c.r_stats P.Stats_prom)
          | _ -> print_endline "unknown command (try `help`)"
        with
       | Exit -> raise Exit
       | e -> Printf.printf "error: %s\n" (Printexc.to_string e))
     done
   with End_of_file | Exit -> if interactive then print_endline "bye");
  c.r_close ()

let config_for policy =
  {
    Sys_.default_config with
    Sys_.nvm =
      Nvm.Config.with_policy
        {
          Nvm.Config.default with
          Nvm.Config.size_bytes = 64 * 1024 * 1024;
          extlog_bytes = 4 * 1024 * 1024;
        }
        policy;
    epoch_len_ns = 16.0e6;
  }

let () =
  let variant = ref Sys_.Incll in
  let shards = ref 1 in
  let policy = ref Nvm.Config.Throughput in
  let connect = ref None in
  let retry = ref false in
  let rec parse = function
    | [] -> ()
    | "--connect" :: v :: rest ->
        connect := Some (Wire.Client.addr_of_string v);
        parse rest
    | "--retry" :: rest ->
        retry := true;
        parse rest
    | "--variant" :: v :: rest ->
        variant := Sys_.variant_of_string v;
        parse rest
    | "--shards" :: v :: rest ->
        shards := int_of_string v;
        parse rest
    | "--policy" :: v :: rest ->
        (match Nvm.Config.policy_of_string v with
        | p -> policy := p
        | exception Invalid_argument _ ->
            prerr_endline
              ("unknown policy " ^ v ^ " (throughput|latency|rto)");
            exit 2);
        parse rest
    | x :: _ ->
        prerr_endline ("unknown argument " ^ x);
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  (match !connect with
  | Some addr ->
      remote_main ~retry:!retry addr;
      exit 0
  | None -> ());
  let config = config_for !policy in
  let store = ref (S.create ~config !variant ~shards:!shards) in
  let crashed = ref false in
  Printf.printf "incll shell — %s, %d shard(s), %s policy. Type `help`.\n%!"
    (Sys_.variant_name !variant)
    !shards
    (Nvm.Config.policy_name !policy);
  let interactive = Unix.isatty Unix.stdin in
  (try
     while true do
       if interactive then Printf.printf "incll> %!";
       let line = input_line stdin in
       let parts =
         String.split_on_char ' ' (String.trim line)
         |> List.filter (fun s -> s <> "")
       in
       (try
          match parts with
          | [] -> ()
          | [ "help" ] -> print_endline usage
          | [ "quit" ] | [ "exit" ] -> raise Exit
          | [ "put"; k; v ] when not !crashed ->
              S.put !store ~key:k ~value:v;
              print_endline "ok"
          | [ "get"; k ] when not !crashed -> (
              match S.get !store ~key:k with
              | Some v -> Printf.printf "%S\n" v
              | None -> print_endline "(not found)")
          | [ "del"; k ] when not !crashed ->
              print_endline (if S.remove !store ~key:k then "ok" else "(not found)")
          | [ "scan"; start; n ] when not !crashed ->
              List.iter
                (fun (k, v) -> Printf.printf "  %S -> %S\n" k v)
                (S.scan !store ~start ~n:(int_of_string n))
          | [ "count" ] when not !crashed ->
              Printf.printf "%d entries\n" (S.cardinal !store)
          | [ "begin" ] when not !crashed ->
              if S.txn_active !store then print_endline "transaction already open"
              else begin
                S.txn_begin !store;
                Printf.printf "txn %d open\n"
                  (Option.value ~default:0 (S.txn_id !store))
              end
          | [ "tput"; k; v ] when not !crashed ->
              if S.txn_active !store then begin
                S.txn_put !store ~key:k ~value:v;
                print_endline "buffered"
              end
              else print_endline "no open transaction (try `begin`)"
          | [ "tdel"; k ] when not !crashed ->
              if S.txn_active !store then begin
                S.txn_remove !store ~key:k;
                print_endline "buffered"
              end
              else print_endline "no open transaction (try `begin`)"
          | [ "tget"; k ] when not !crashed ->
              if S.txn_active !store then
                match S.txn_get !store ~key:k with
                | Some v -> Printf.printf "%S\n" v
                | None -> print_endline "(not found)"
              else print_endline "no open transaction (try `begin`)"
          | [ "commit" ] when not !crashed ->
              if S.txn_active !store then begin
                let id = Option.value ~default:0 (S.txn_id !store) in
                S.txn_commit !store;
                Printf.printf "txn %d committed durably\n" id
              end
              else print_endline "no open transaction (try `begin`)"
          | [ "abort" ] when not !crashed ->
              if S.txn_active !store then begin
                S.txn_abort !store;
                print_endline "aborted (no shard was touched)"
              end
              else print_endline "no open transaction (try `begin`)"
          | [ "checkpoint" ] when not !crashed ->
              S.advance_epochs !store;
              print_endline "checkpointed (everything so far is durable)"
          | "crash" :: rest when not !crashed ->
              let seed =
                match rest with [ s ] -> int_of_string s | _ -> 42
              in
              S.crash !store (Util.Rng.create ~seed);
              crashed := true;
              print_endline
                "power failure: volatile state lost; `recover` to restart"
          | [ "recover" ] ->
              if !crashed then begin
                let phases = S.recover !store in
                crashed := false;
                print_endline "recovered to the last completed checkpoint";
                let total =
                  List.fold_left (fun a (_, d) -> a +. d) 0.0 phases
                in
                List.iter
                  (fun (name, d) ->
                    Printf.printf "  %-24s %10.3f ms  %5.1f%%\n" name (d /. 1e6)
                      (if total > 0.0 then 100.0 *. d /. total else 0.0))
                  phases;
                Printf.printf "  %-24s %10.3f ms\n" "total (simulated)"
                  (total /. 1e6)
              end
              else print_endline "nothing to recover from (try `crash` first)"
          | [ "replay"; path ] when not !crashed ->
              let ops = Workload.Trace.load path in
              List.iter
                (fun op ->
                  match op with
                  | Workload.Trace.Put (key, value) -> S.put !store ~key ~value
                  | Workload.Trace.Get key -> ignore (S.get !store ~key)
                  | Workload.Trace.Del key -> ignore (S.remove !store ~key)
                  | Workload.Trace.Scan (start, n) ->
                      ignore (S.scan !store ~start ~n))
                ops;
              Printf.printf "replayed %d operations\n" (List.length ops)
          | [ "save"; path ] when not !crashed ->
              if S.nshards !store <> 1 then
                print_endline "save works on single-shard stores"
              else begin
                S.advance_epochs !store;
                Nvm.Image.save (Sys_.region (S.shard !store 0)) ~path;
                Printf.printf "checkpointed and saved image to %s\n" path
              end
          | [ "load"; path ] ->
              let region = Nvm.Image.load config.Sys_.nvm ~path in
              store := S.of_system (Sys_.attach ~config !variant region);
              crashed := false;
              Printf.printf "rebooted from %s (%d entries)\n" path
                (S.cardinal !store)
          | [ "validate" ] when not !crashed ->
              for i = 0 to S.nshards !store - 1 do
                Masstree.Tree.validate (Sys_.tree (S.shard !store i))
              done;
              print_endline "structure valid"
          | [ "stats" ] when not !crashed ->
              for i = 0 to S.nshards !store - 1 do
                let sys = S.shard !store i in
                let st = Nvm.Region.stats (Sys_.region sys) in
                Printf.printf "shard %d: %s\n" i
                  (Format.asprintf "%a" Nvm.Stats.pp st);
                Printf.printf "         externally logged nodes: %d\n"
                  (Sys_.nodes_logged sys)
              done
          | [ "stats"; "--json" ] when not !crashed ->
              let shards =
                List.init (S.nshards !store) (fun i ->
                    Nvm.Stats.to_json
                      (Nvm.Region.stats (Sys_.region (S.shard !store i))))
              in
              print_endline
                (Obs.Json.to_string_pretty
                   (Obs.Json.Obj
                      [
                        ("shards", Obs.Json.List shards);
                        ("metrics", Obs.Registry.to_json (S.metrics !store));
                      ]))
          | [ "stats"; "--prom" ] when not !crashed ->
              print_string (Obs.Registry.to_prometheus (S.metrics !store))
          | [ "trace"; ("on" | "off") as sw ] ->
              for i = 0 to S.nshards !store - 1 do
                Obs.Trace.set_enabled
                  (Nvm.Region.trace (Sys_.region (S.shard !store i)))
                  (sw = "on")
              done;
              Printf.printf "trace %s (%d shard(s))\n" sw (S.nshards !store)
          | [ "trace"; "dump" ] ->
              (* Non-destructive: dump again and you get the same window;
                 use `trace clear` to start a fresh one. *)
              let dump =
                Obs.Json.List
                  (List.init (S.nshards !store) (fun i ->
                       Obs.Trace.to_json
                         (Nvm.Region.trace (Sys_.region (S.shard !store i)))))
              in
              print_endline (Obs.Json.to_string_pretty dump)
          | [ "trace"; "clear" ] ->
              for i = 0 to S.nshards !store - 1 do
                Obs.Trace.clear (Nvm.Region.trace (Sys_.region (S.shard !store i)))
              done;
              Printf.printf "trace cleared (%d shard(s))\n" (S.nshards !store)
          | _ when !crashed ->
              print_endline "the system is crashed; only `recover` works"
          | _ -> print_endline "unknown command (try `help`)"
        with
       | Exit -> raise Exit
       | e -> Printf.printf "error: %s\n" (Printexc.to_string e))
     done
   with End_of_file | Exit -> if interactive then print_endline "bye")
