(* Crash-chaos driver: run the torture matrix, inject deterministic
   fault schedules, minimize failures to a replayable JSON repro.

   Examples:
     dune exec bin/chaos.exe -- --seeds 1,4,6,7 --ops 30000 --json out.json
     dune exec bin/chaos.exe -- --schedule merge_limbo:1,recover.alloc_chains:1
     dune exec bin/chaos.exe -- --replay chaos_repro.json
     dune exec bin/chaos.exe -- --sites            # list injection sites *)

module T = Chaos_runner.Torture
module Shrink = Chaos_runner.Shrink
module J = Obs.Json

let usage () =
  prerr_endline
    "usage: chaos.exe [--seeds S1,S2,..] [--ops N] [--nkeys N]\n\
    \       [--crash-period N] [--shards N] [--txn-period N] [--txn-writes N]\n\
    \       [--policy throughput|latency|rto]\n\
    \       [--schedule SITE[:HIT],..] [--json FILE]\n\
    \       [--save-image FILE] [--minimize] [--repro FILE]\n\
    \       [--replay FILE] [--sites] [--verbose]";
  exit 2

let () =
  let seeds = ref [ 7 ] in
  let ops = ref T.default.T.ops in
  let nkeys = ref T.default.T.nkeys in
  let crash_period = ref T.default.T.crash_period in
  let shards = ref T.default.T.shards in
  let txn_period = ref T.default.T.txn_period in
  let txn_writes = ref T.default.T.txn_writes in
  let policy = ref T.default.T.policy in
  let schedule = ref [] in
  let json_out = ref None in
  let save_image = ref None in
  let minimize = ref false in
  let repro_out = ref "chaos_repro.json" in
  let replay = ref None in
  let verbose = ref false in
  let rec parse = function
    | [] -> ()
    | "--seeds" :: v :: rest ->
        seeds :=
          String.split_on_char ',' v
          |> List.filter (fun s -> String.trim s <> "")
          |> List.map int_of_string;
        parse rest
    | "--ops" :: v :: rest ->
        ops := int_of_string v;
        parse rest
    | "--nkeys" :: v :: rest ->
        nkeys := int_of_string v;
        parse rest
    | "--crash-period" :: v :: rest ->
        crash_period := int_of_string v;
        parse rest
    | "--shards" :: v :: rest ->
        shards := int_of_string v;
        parse rest
    | "--txn-period" :: v :: rest ->
        txn_period := int_of_string v;
        parse rest
    | "--txn-writes" :: v :: rest ->
        txn_writes := int_of_string v;
        parse rest
    | "--policy" :: v :: rest ->
        policy := Nvm.Config.policy_of_string v;
        parse rest
    | "--schedule" :: v :: rest ->
        schedule := Chaos.Plan.parse v;
        parse rest
    | "--json" :: v :: rest ->
        json_out := Some v;
        parse rest
    | "--save-image" :: v :: rest ->
        save_image := Some v;
        parse rest
    | "--minimize" :: rest ->
        minimize := true;
        parse rest
    | "--repro" :: v :: rest ->
        repro_out := v;
        parse rest
    | "--replay" :: v :: rest ->
        replay := Some v;
        parse rest
    | "--sites" :: _ ->
        List.iter
          (fun s -> print_endline (Chaos.Site.to_string s))
          Chaos.Site.all;
        exit 0
    | "--verbose" :: rest ->
        verbose := true;
        parse rest
    | x :: _ ->
        prerr_endline ("unexpected argument " ^ x);
        usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let base seed =
    {
      T.default with
      T.ops = !ops;
      nkeys = !nkeys;
      seed;
      crash_period = !crash_period;
      shards = !shards;
      txn_period = !txn_period;
      txn_writes = !txn_writes;
      policy = !policy;
      schedule = !schedule;
      verbose = !verbose;
    }
  in
  let configs =
    match !replay with
    | Some path ->
        let ic = open_in_bin path in
        let len = in_channel_length ic in
        let doc = really_input_string ic len in
        close_in ic;
        Printf.printf "replaying %s\n%!" path;
        [ Shrink.config_of_json (J.of_string doc) ]
    | None -> List.map base !seeds
  in
  let outcome_json cfg (o : T.outcome) =
    J.Obj
      [
        ("seed", J.Int cfg.T.seed);
        ("ops", J.Int cfg.T.ops);
        ("ok", J.Bool o.T.ok);
        ("crashes", J.Int o.T.crashes);
        ("recoveries", J.Int o.T.recoveries);
        ("verified", J.Int o.T.verified);
        ("txns_committed", J.Int o.T.txns_committed);
        ("txns_in_doubt", J.Int o.T.txns_in_doubt);
        ("quarantined", J.Int o.T.quarantined);
        ("schedule_left", J.Int o.T.schedule_left);
        ( "injected",
          J.Obj (List.map (fun (s, n) -> (s, J.Int n)) o.T.injected) );
        ( "failure",
          match o.T.failure with
          | None -> J.Null
          | Some f -> J.String (T.failure_to_string f) );
      ]
  in
  let all_ok = ref true in
  let runs =
    List.map
      (fun cfg ->
        Printf.printf "chaos: seed %d, %d ops%s%s%s...%!" cfg.T.seed cfg.T.ops
          (match cfg.T.policy with
          | Nvm.Config.Throughput -> ""
          | p -> ", policy " ^ Nvm.Config.policy_name p)
          (if cfg.T.shards > 1 || cfg.T.txn_period > 0 then
             Printf.sprintf ", %d shards, txn 1/%d" cfg.T.shards
               cfg.T.txn_period
           else "")
          (match cfg.T.schedule with
          | [] -> ""
          | s ->
              ", schedule "
              ^ String.concat "," (List.map Chaos.Plan.point_to_string s));
        let o = T.run ?save_image:!save_image cfg in
        Printf.printf " %s (%d crashes, %d injected, %d verified%s%s)\n%!"
          (if o.T.ok then "ok" else "FAIL")
          o.T.crashes
          (List.fold_left (fun a (_, n) -> a + n) 0 o.T.injected)
          o.T.verified
          (if o.T.txns_committed > 0 || o.T.txns_in_doubt > 0 then
             Printf.sprintf ", %d txns (%d in doubt)" o.T.txns_committed
               o.T.txns_in_doubt
           else "")
          (if o.T.quarantined > 0 then
             Printf.sprintf ", %d QUARANTINED" o.T.quarantined
           else "");
        (match o.T.failure with
        | Some f -> Printf.printf "  failure: %s\n%!" (T.failure_to_string f)
        | None -> ());
        if not o.T.ok then begin
          all_ok := false;
          if !minimize then begin
            Printf.printf "  minimizing...\n%!";
            match Shrink.minimize cfg with
            | Some (mcfg, mout) ->
                let doc = Shrink.repro_to_json mcfg mout in
                let oc = open_out !repro_out in
                output_string oc (J.to_string_pretty doc);
                output_char oc '\n';
                close_out oc;
                Printf.printf
                  "  minimized to %d ops; repro written to %s\n%!" mcfg.T.ops
                  !repro_out
            | None ->
                Printf.printf "  minimization lost the failure (flaky?)\n%!"
          end
        end;
        outcome_json cfg o)
      configs
  in
  (match !json_out with
  | Some path ->
      let doc = J.Obj [ ("ok", J.Bool !all_ok); ("runs", J.List runs) ] in
      let oc = open_out path in
      output_string oc (J.to_string_pretty doc);
      output_char oc '\n';
      close_out oc;
      Printf.printf "report written to %s\n%!" path
  | None -> ());
  exit (if !all_ok then 0 else 1)
